package core

import (
	"sort"
	"sync/atomic"

	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/sim"
	"venn/internal/simtime"
)

// Options configure a Venn scheduler instance.
type Options struct {
	// Tiers is V, the device-tier granularity of Algorithm 2 (default 3;
	// 1 disables tiering).
	Tiers int
	// Epsilon is the fairness knob of §4.4 (0 disables).
	Epsilon float64
	// DisableMatching turns off tier-based matching — the paper's
	// "Venn w/o matching" ablation. (The former DisableScheduling knob —
	// FIFO job order with matching kept — is now a policy of its own:
	// internal/policy's NewFIFOMatch, registry name "fifo".)
	DisableMatching bool
	// MinProfileSamples gates tier decisions on profile maturity.
	MinProfileSamples int
	// DisableIncrementalPlan forces a full Algorithm-1 rebuild on every
	// plan refresh instead of the incremental patch path. Plans are
	// byte-identical either way (the differential test in internal/eval
	// pins this); the knob exists for that test and for attributing
	// regressions.
	DisableIncrementalPlan bool
}

// DefaultOptions returns the configuration used in the end-to-end
// evaluation: 3 tiers, fairness knob off.
func DefaultOptions() Options {
	return Options{Tiers: 3, MinProfileSamples: 20}
}

// vgroup is one resource-homogeneous job group at run time.
type vgroup struct {
	req    device.Requirement
	region device.RegionSet
	// jobs holds the open requests sorted ascending by (adjusted demand,
	// job ID). The sort key is cached in adj at insertion time — a job's
	// adjusted demand only moves on its own lifecycle events (round
	// completion, abort), each of which re-opens the request through
	// OnRequest, so re-keying the one affected job keeps the whole queue
	// ordered without the former full re-sort on every plan rebuild.
	jobs []*job.Job
	// adj caches each queued job's sort key and doubles as the O(1)
	// membership index that replaced linear containment scans.
	adj   map[job.ID]float64
	state *GroupState
	// dirty marks that the queue changed (insert, remove, or re-key)
	// since the group's planner inputs were last refreshed. The planner
	// skips recomputing queue pressure for clean groups on the
	// incremental path.
	dirty bool
}

// insertJob places j into the group's demand order under sort key d.
func (g *vgroup) insertJob(j *job.Job, d float64) {
	g.adj[j.ID] = d
	i := sort.Search(len(g.jobs), func(k int) bool {
		jk := g.jobs[k]
		if dk := g.adj[jk.ID]; dk != d {
			return dk > d
		}
		return jk.ID > j.ID
	})
	g.jobs = append(g.jobs, nil)
	copy(g.jobs[i+1:], g.jobs[i:])
	g.jobs[i] = j
}

// removeJob deletes the job from the group's demand order, locating it by
// its cached sort key. The vacated tail slot is nilled so completed jobs
// (and their response histories) are released in long-horizon runs.
func (g *vgroup) removeJob(id job.ID) {
	d, ok := g.adj[id]
	if !ok {
		return
	}
	i := sort.Search(len(g.jobs), func(k int) bool {
		jk := g.jobs[k]
		if dk := g.adj[jk.ID]; dk != d {
			return dk > d
		}
		return jk.ID >= id
	})
	if i >= len(g.jobs) || g.jobs[i].ID != id {
		// The cached key went stale (cannot happen while the OnRequest
		// re-keying invariant holds); fall back to a linear scan rather
		// than corrupt the queue.
		i = 0
		for ; i < len(g.jobs); i++ {
			if g.jobs[i].ID == id {
				break
			}
		}
		if i == len(g.jobs) {
			delete(g.adj, id)
			return
		}
	}
	delete(g.adj, id)
	copy(g.jobs[i:], g.jobs[i+1:])
	g.jobs[len(g.jobs)-1] = nil
	g.jobs = g.jobs[:len(g.jobs)-1]
}

// maxCellCacheEntries caps the device→cell memoization table so the core's
// footprint stays bounded no matter how many device IDs a long-lived server
// hands out; devices beyond the cap fall back to the two binary searches.
const maxCellCacheEntries = 1 << 20

// Venn is the paper's CL resource manager. It implements sim.Scheduler.
type Venn struct {
	opts Options
	env  *sim.Env

	groups   map[device.RequirementKey]*vgroup
	filters  map[job.ID]*tierFilter
	profiles *profiler
	sdCache  map[job.ID]simtime.Duration
	fairM    map[job.ID]int
	active   int
	lastNow  simtime.Time

	// planStale is set by every lifecycle event that can invalidate the
	// current plan and cleared when ensurePlan republishes. It is atomic
	// so lock-free snapshot readers can pair it with the published
	// snapshot (see PlanFresh).
	planStale atomic.Bool
	// structChanged records that the set of planned groups itself changed
	// (a group gained its first or lost its last open request), which
	// invalidates the plan's group indexing and forces a full rebuild.
	structChanged bool
	// fullRebuild forces the next ensurePlan through the full path (env
	// rebinds, first plan).
	fullRebuild bool

	// Last computed plan and the groups it indexes into, sorted by
	// requirement key for deterministic planning order.
	plan       *CellPlan
	planGroups []*vgroup

	// Published snapshot state (see snapshot.go).
	snap      atomic.Pointer[PlanSnapshot]
	planEpoch uint64

	// Incremental-plan input caches: the cell rates, per-group
	// allocations, and scarcity permutation the current plan was built
	// from. The patch path recomputes inputs, diffs against these, and
	// only rebuilds what changed.
	ratePrev  []float64
	allocPrev []device.RegionSet
	scarcity  []int

	// Reused plan-rebuild buffers.
	stateBuf []*GroupState
	rateBuf  []float64

	// cellCache memoizes the device → cell mapping by device ID (device
	// scores are immutable for a run). Entries are cell+1 so the zero
	// value means "unknown".
	cellCache []int32

	// PlanRebuilds counts full Algorithm-1 pipeline runs; PlanPatches
	// counts refreshes served by the incremental path (including
	// no-input-change hits). Their ratio is the incremental hit rate
	// surfaced in /v1/metrics.
	PlanRebuilds int
	PlanPatches  int
	// TierFiltersApplied counts requests that ran tier-restricted
	// (observability).
	TierFiltersApplied int
}

// New creates a Venn scheduler with the given options.
func New(opts Options) *Venn {
	if opts.Tiers <= 0 {
		opts.Tiers = 3
	}
	if opts.MinProfileSamples <= 0 {
		opts.MinProfileSamples = 20
	}
	return &Venn{
		opts:     opts,
		groups:   make(map[device.RequirementKey]*vgroup),
		filters:  make(map[job.ID]*tierFilter),
		profiles: newProfiler(opts.MinProfileSamples),
		sdCache:  make(map[job.ID]simtime.Duration),
		fairM:    make(map[job.ID]int),
	}
}

// NewDefault creates a Venn scheduler with DefaultOptions.
func NewDefault() *Venn { return New(DefaultOptions()) }

// Name implements sim.Scheduler.
func (v *Venn) Name() string {
	if v.opts.DisableMatching {
		return "Venn-w/o-match"
	}
	return "Venn"
}

// Bind implements sim.Scheduler.
func (v *Venn) Bind(env *sim.Env) {
	v.env = env
	v.cellCache = v.cellCache[:0] // a new env means a new grid
	v.fullRebuild = true          // ...and a new grid invalidates every plan row
	v.planStale.Store(true)
}

// OnJobArrival implements sim.Scheduler.
func (v *Venn) OnJobArrival(j *job.Job, now simtime.Time) {
	v.lastNow = now
	v.active++
	v.fairM[j.ID] = v.active
	v.soloJCT(j) // prime the no-contention estimate at arrival conditions
}

// OnRequest implements sim.Scheduler.
func (v *Venn) OnRequest(j *job.Job, now simtime.Time) {
	v.lastNow = now
	g := v.ensureGroup(j.Requirement)
	d := v.adjustedDemand(j)
	if old, queued := g.adj[j.ID]; !queued {
		if len(g.jobs) == 0 {
			v.structChanged = true // group enters the plan
		}
		g.insertJob(j, d)
		g.dirty = true
	} else if old != d {
		g.removeJob(j.ID)
		g.insertJob(j, d)
		g.dirty = true
	}
	if f := v.decideTier(j, now); f != nil {
		v.filters[j.ID] = f
		v.TierFiltersApplied++
	} else {
		delete(v.filters, j.ID)
	}
	v.planStale.Store(true)
}

// OnRequestFulfilled implements sim.Scheduler.
func (v *Venn) OnRequestFulfilled(j *job.Job, now simtime.Time) {
	v.lastNow = now
	v.removeOpen(j)
	v.planStale.Store(true)
}

// OnJobDone implements sim.Scheduler.
func (v *Venn) OnJobDone(j *job.Job, now simtime.Time) {
	v.lastNow = now
	v.active--
	v.removeOpen(j)
	v.profiles.drop(j.ID)
	delete(v.sdCache, j.ID)
	delete(v.fairM, j.ID)
	delete(v.filters, j.ID)
	v.planStale.Store(true)
}

// ObserveResponse implements sim.Scheduler.
func (v *Venn) ObserveResponse(j *job.Job, d *device.Device, dur simtime.Duration, now simtime.Time) {
	v.profiles.observe(j.ID, d.Capability(), dur.Seconds())
}

// Assign implements sim.Scheduler. The per-device walk consults the cell
// plan's group order for the device's cell and hands out the first
// schedulable job, honoring tier filters (devices outside a job's tier flow
// to the next job in the order).
func (v *Venn) Assign(d *device.Device, now simtime.Time) *job.Job {
	v.lastNow = now
	v.ensurePlan(now)
	cell := v.cellOf(d)
	if int(cell) >= len(v.plan.Order) {
		return nil
	}
	checkFilters := len(v.filters) > 0
	for _, gi := range v.plan.Order[cell] {
		for _, j := range v.planGroups[gi].jobs {
			if j.State() != job.StateScheduling || j.RemainingDemand() <= 0 {
				continue
			}
			if !j.Requirement.Eligible(d) {
				continue
			}
			if checkFilters {
				if f := v.filters[j.ID]; f != nil && now < f.lapseAt && !f.accepts(d) {
					continue
				}
			}
			return j
		}
	}
	return nil
}

// cellOf memoizes Grid.CellOfDevice by device ID: two binary searches per
// assignment add up over millions of check-ins, and a device never changes
// cells within a run. The table is capped (see maxCellCacheEntries) so it
// cannot grow without bound as a long-lived server mints device IDs.
func (v *Venn) cellOf(d *device.Device) device.CellID {
	id := int(d.ID)
	if id < 0 || id >= maxCellCacheEntries {
		return v.env.Grid.CellOfDevice(d)
	}
	if id >= len(v.cellCache) {
		grown := make([]int32, id+1+1024)
		copy(grown, v.cellCache)
		v.cellCache = grown
	}
	if c := v.cellCache[id]; c > 0 {
		return device.CellID(c - 1)
	}
	c := v.env.Grid.CellOfDevice(d)
	v.cellCache[id] = int32(c) + 1
	return c
}

// ResetCellCache drops the device→cell memoization table. The live server
// calls this after evicting idle devices: their IDs are never reused, so
// keeping their entries would leak table space proportional to fleet churn.
// The cache repopulates on demand.
func (v *Venn) ResetCellCache() { v.cellCache = nil }

// TierAccepts reports whether job id's tier filter (if any) admits device d
// at time now. It exposes the matching decision to policies outside the
// package: the FIFO-order ablation (internal/policy) keeps tier-based
// matching in force while replacing the IRS job order, so it forwards the
// lifecycle events to an inner Venn and consults this during its own
// assignment walk.
func (v *Venn) TierAccepts(id job.ID, d *device.Device, now simtime.Time) bool {
	if len(v.filters) == 0 {
		return true
	}
	f := v.filters[id]
	return f == nil || now >= f.lapseAt || f.accepts(d)
}

// ensurePlan lazily refreshes the IRS allocation and cell plan, then
// republishes the snapshot. Three paths, cheapest first:
//
//   - nothing stale: return (the hot path — one atomic load);
//   - plan stale but the planned group set unchanged: refresh the planner
//     inputs for dirty groups only, rerun the (cheap, group-level)
//     Algorithm-1 allocation when any input moved, and patch just the cells
//     whose allocation owner changed — or keep the plan outright when the
//     recomputed inputs and allocations are identical (PlanPatches);
//   - the group set changed or the env was rebound: full rebuild
//     (PlanRebuilds).
//
// Both refresh paths produce byte-identical plans for identical inputs —
// the patch path only reuses a row when the scarcity permutation is
// unchanged and the cell's owner did not move, which together determine the
// row's exact content.
func (v *Venn) ensurePlan(now simtime.Time) {
	if v.plan != nil && !v.planStale.Load() {
		return
	}
	if v.plan == nil || v.fullRebuild || v.structChanged || v.opts.DisableIncrementalPlan {
		v.rebuildPlan(now)
	} else {
		v.patchPlan(now)
	}
	v.fullRebuild, v.structChanged = false, false
	v.publishSnapshot()
	v.planStale.Store(false)
}

// refreshRates fills rateBuf with the current per-cell supply estimates.
func (v *Venn) refreshRates(now simtime.Time, numCells int) []float64 {
	if cap(v.rateBuf) < numCells {
		v.rateBuf = make([]float64, numCells)
	}
	rates := v.rateBuf[:numCells]
	useDB := v.env.DB != nil && v.env.DB.HasHistory(now, 6)
	for c := range rates {
		rates[c] = v.env.CellRatePerHour(device.CellID(c), now, useDB)
	}
	return rates
}

// rebuildPlan is the full Algorithm-1 pipeline: collect the non-empty
// groups, refresh every planner input, allocate, and build all cell rows.
func (v *Venn) rebuildPlan(now simtime.Time) {
	v.PlanRebuilds++
	numCells := v.env.Grid.NumCells()
	rates := v.refreshRates(now, numCells)

	// Collect groups with open requests and refresh their state. Each
	// group's queue is already ordered by fairness-adjusted remaining
	// demand, smallest first (Algorithm 1 line 3) — the order is
	// maintained incrementally at request open/close, so the rebuild only
	// refreshes supply and queue pressure.
	v.planGroups = v.planGroups[:0]
	for _, g := range v.groups {
		if len(g.jobs) == 0 {
			continue
		}
		if g.state == nil {
			g.state = &GroupState{Region: g.region}
		}
		g.state.Supply = g.region.WeightedSum(rates)
		g.state.Queue = v.adjustedQueue(g.jobs)
		g.dirty = false
		v.planGroups = append(v.planGroups, g)
	}
	// Deterministic planning order regardless of map iteration.
	sort.SliceStable(v.planGroups, func(a, b int) bool {
		ka, kb := v.planGroups[a].req.Key(), v.planGroups[b].req.Key()
		if ka.MinCPU != kb.MinCPU {
			return ka.MinCPU < kb.MinCPU
		}
		return ka.MinMem < kb.MinMem
	})

	states := v.stateBuf[:0]
	for _, g := range v.planGroups {
		states = append(states, g.state)
	}
	v.stateBuf = states
	ComputeAllocation(states, rates)
	order := scarcityOrder(states)
	v.plan = buildCellPlanOrdered(states, numCells, order)
	v.savePlanInputs(rates, order)
}

// patchPlan refreshes the plan knowing the planned group set is unchanged:
// group indices, regions, and row sizes all still hold, so the previous
// plan's rows can be reused wherever the recomputed allocation and scarcity
// order agree with the cached ones.
func (v *Venn) patchPlan(now simtime.Time) {
	numCells := v.env.Grid.NumCells()
	rates := v.refreshRates(now, numCells)

	inputChanged := !float64sEqual(v.ratePrev, rates)
	refreshAll := v.opts.Epsilon > 0 // fairness terms drift with time for every group
	for _, g := range v.planGroups {
		if sup := g.region.WeightedSum(rates); sup != g.state.Supply {
			g.state.Supply = sup
			inputChanged = true
		}
		if g.dirty || refreshAll {
			if q := v.adjustedQueue(g.jobs); q != g.state.Queue {
				g.state.Queue = q
				inputChanged = true
			}
			g.dirty = false
		}
	}
	if !inputChanged {
		// Identical inputs reproduce the identical plan; keep it.
		v.PlanPatches++
		return
	}

	ComputeAllocation(v.stateBuf, rates)
	order := scarcityOrder(v.stateBuf)
	if !intsEqual(order, v.scarcity) {
		// The per-cell priority order shifted: every row may change.
		v.PlanRebuilds++
		v.plan = buildCellPlanOrdered(v.stateBuf, numCells, order)
		v.savePlanInputs(rates, order)
		return
	}

	// Same priority order: rows can only differ on cells whose allocation
	// owner moved. Collect those cells and patch them copy-on-write.
	changed := v.env.Grid.EmptySet()
	for i, g := range v.planGroups {
		if !g.state.Alloc.Equal(v.allocPrev[i]) {
			changed.AccumulateDiff(g.state.Alloc, v.allocPrev[i])
		}
	}
	v.PlanPatches++
	if !changed.Empty() {
		v.plan = patchCellPlan(v.plan, v.stateBuf, order, changed)
	}
	v.savePlanInputs(rates, order)
}

// savePlanInputs caches the inputs the current plan was derived from, for
// the next patch-path diff.
func (v *Venn) savePlanInputs(rates []float64, order []int) {
	v.ratePrev = append(v.ratePrev[:0], rates...)
	v.scarcity = append(v.scarcity[:0], order...)
	if cap(v.allocPrev) < len(v.planGroups) {
		v.allocPrev = make([]device.RegionSet, len(v.planGroups))
	}
	v.allocPrev = v.allocPrev[:len(v.planGroups)]
	for i, g := range v.planGroups {
		v.allocPrev[i].CopyFrom(g.state.Alloc)
	}
}

func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (v *Venn) ensureGroup(req device.Requirement) *vgroup {
	key := req.Key()
	if g, ok := v.groups[key]; ok {
		return g
	}
	g := &vgroup{
		req:    req,
		region: v.env.Grid.RegionOf(req),
		adj:    make(map[job.ID]float64),
	}
	v.groups[key] = g
	return g
}

func (v *Venn) removeOpen(j *job.Job) {
	if g, ok := v.groups[j.Requirement.Key()]; ok {
		if _, queued := g.adj[j.ID]; queued {
			g.removeJob(j.ID)
			if len(g.jobs) == 0 {
				v.structChanged = true // group leaves the plan
			} else {
				g.dirty = true
			}
		}
	}
}
