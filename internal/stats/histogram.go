package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// are clamped into the first/last bin so mass is never silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := h.binOf(x)
	h.Counts[idx]++
	h.total++
}

func (h *Histogram) binOf(x float64) int {
	n := len(h.Counts)
	if x < h.Lo {
		return 0
	}
	if x >= h.Hi {
		return n - 1
	}
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// CDF returns the empirical cumulative fraction of observations <= the upper
// edge of bin i.
func (h *Histogram) CDF(i int) float64 {
	if h.total == 0 {
		return 0
	}
	c := 0
	for j := 0; j <= i && j < len(h.Counts); j++ {
		c += h.Counts[j]
	}
	return float64(c) / float64(h.total)
}

// Quantile returns an approximate q-quantile (q in [0,1]) from the binned
// data, interpolating within the containing bin.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return h.Lo
	}
	if q <= 0 {
		return h.Lo
	}
	if q >= 1 {
		return h.Hi
	}
	target := q * float64(h.total)
	acc := 0.0
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		next := acc + float64(c)
		if next >= target {
			frac := 0.0
			if c > 0 {
				frac = (target - acc) / float64(c)
			}
			return h.Lo + w*(float64(i)+frac)
		}
		acc = next
	}
	return h.Hi
}

// String renders an ASCII sketch of the histogram, one row per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = int(math.Round(float64(c) / float64(maxC) * 40))
		}
		fmt.Fprintf(&b, "%10.3f | %s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// ECDF is an empirical CDF over an explicit sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from xs (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of samples <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (q in [0,1]) of the sample.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return PercentileSorted(e.sorted, q*100)
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }
