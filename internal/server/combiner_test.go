package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// driveCorePipeline replays a fixed traffic script — staggered job
// registrations, mixed eligible/surplus check-in batches, single check-ins,
// and reports — and returns every result the manager handed back, JSON
// encoded in arrival order. Two managers with the same seed and clock must
// produce byte-identical transcripts regardless of the core commit mode.
func driveCorePipeline(t *testing.T, m *Manager, clk *fakeClock) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	record := func(v any) {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	cats := []string{"General", "High-Perf", "Compute-Rich", "Memory-Rich"}
	for step := 0; step < 30; step++ {
		clk.advance(13 * time.Second)
		if step%5 == 0 {
			st, err := m.RegisterJob(JobSpec{
				Name:           fmt.Sprintf("j%d", step),
				Category:       cats[step%len(cats)],
				DemandPerRound: 2 + step%3,
				Rounds:         1 + step%2,
			})
			if err != nil {
				t.Fatal(err)
			}
			record(st)
		}
		// A batch whose device scores straddle the requirement tiers: some
		// items are surplus (answered off the snapshot), some enter the
		// core pipeline.
		cis := make([]CheckIn, 8)
		for i := range cis {
			n := (step*5 + i) % 40
			cis[i] = CheckIn{
				DeviceID: fmt.Sprintf("d%d", n),
				CPU:      float64(n%10) / 10,
				Mem:      float64((n+3)%10) / 10,
			}
		}
		res := m.CheckInBatch(cis)
		record(res)
		var reps []Report
		for i, r := range res {
			if r.Assigned {
				reps = append(reps, Report{
					DeviceID: cis[i].DeviceID, JobID: r.JobID,
					OK: i%5 != 0, DurationSeconds: 9,
				})
			}
		}
		if len(reps) > 0 {
			record(m.ReportBatch(reps))
		}
		sid := fmt.Sprintf("s%d", step%10)
		asg, err := m.DeviceCheckIn(CheckIn{DeviceID: sid, CPU: 0.95, Mem: 0.95})
		if err != nil {
			t.Fatal(err)
		}
		record(asg)
		if asg.Assigned {
			if err := m.DeviceReport(Report{DeviceID: sid, JobID: asg.JobID, OK: true, DurationSeconds: 4}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := m.StatsSnapshot()
	record([]int{st.CheckIns, st.Assignments, st.Reports, st.Failures, st.Aborts})
	return buf.Bytes()
}

// TestCoreCommitDeterminismPin pins the flat-combining applier to the
// direct-lock path: for a fixed seed and clock, the full result transcript
// (assignments, batch replies, report replies, final counters) must be
// byte-identical across commit modes. "combine" forces every op through the
// queue; "auto" exercises the fast path (a sequential driver never
// contends).
func TestCoreCommitDeterminismPin(t *testing.T) {
	run := func(mode string) []byte {
		clk := newFakeClock()
		m := NewManager(Config{Clock: clk.now, Seed: 7, CoreCommit: mode})
		return driveCorePipeline(t, m, clk)
	}
	want := run("direct")
	for _, mode := range []string{"auto", "combine"} {
		if got := run(mode); !bytes.Equal(got, want) {
			t.Errorf("core commit mode %q diverged from direct-lock transcript:\nbytes %d vs %d", mode, len(got), len(want))
		}
	}
}

// TestCombinerConcurrentMixedLoad races concurrent mixed surplus/demand
// CheckInBatch and report traffic against the combiner (run under -race in
// CI). Low-spec devices stay surplus for the High-Perf-only demand and are
// answered off the snapshot mid-batch while high-spec items of the same
// batches commit through the core pipeline; budget is disabled so demand
// stays contended for the whole run. The end-state invariants catch lost
// updates; the forced-combine subtest additionally proves rounds actually
// combined multiple ops.
func TestCombinerConcurrentMixedLoad(t *testing.T) {
	for _, mode := range []string{"auto", "combine"} {
		t.Run(mode, func(t *testing.T) {
			m := NewManager(Config{CoreCommit: mode, DisableDailyBudget: true})
			const (
				workers        = 64
				devicesPerWork = 32
				iterations     = 4
			)
			totalDemand := 0
			for i := 0; i < 8; i++ {
				d := 40 + i*10
				if _, err := m.RegisterJob(JobSpec{
					Name: fmt.Sprintf("hp-%d", i), Category: "High-Perf",
					DemandPerRound: d, Rounds: 2,
				}); err != nil {
					t.Fatal(err)
				}
				totalDemand += d * 2
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for it := 0; it < iterations; it++ {
						cis := make([]CheckIn, devicesPerWork)
						for i := range cis {
							// Even items are high-spec (High-Perf eligible),
							// odd items are low-spec surplus.
							score := 0.95
							if i%2 == 1 {
								score = 0.05
							}
							cis[i] = CheckIn{
								DeviceID: fmt.Sprintf("w%d-d%d", w, i),
								CPU:      score, Mem: score,
							}
						}
						res := m.CheckInBatch(cis)
						var reps []Report
						for i, r := range res {
							if r.Error != "" {
								t.Errorf("batch item error: %s", r.Error)
								return
							}
							if r.Assigned {
								reps = append(reps, Report{
									DeviceID: cis[i].DeviceID, JobID: r.JobID,
									OK: true, DurationSeconds: 2,
								})
							}
						}
						if len(reps) > 0 {
							for _, rr := range m.ReportBatch(reps) {
								if rr.Error != "" {
									t.Errorf("report item error: %s", rr.Error)
								}
							}
						}
					}
				}(w)
			}
			done := make(chan struct{})
			var readers sync.WaitGroup
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						m.Tick()
						_ = m.StatsSnapshot()
						_ = m.MetricsSnapshot()
					}
				}()
			}
			wg.Wait()
			close(done)
			readers.Wait()

			st := m.StatsSnapshot()
			mt := m.MetricsSnapshot()
			if st.CheckIns == 0 || st.Assignments == 0 {
				t.Fatalf("no traffic recorded: %+v", st)
			}
			if st.Assignments > totalDemand {
				t.Errorf("assignments %d exceed total demand %d", st.Assignments, totalDemand)
			}
			if st.Reports > st.Assignments {
				t.Errorf("more reports than assignments: %+v", st)
			}
			if mt.LockFreeCheckIns == 0 {
				t.Errorf("no surplus check-ins took the lock-free path")
			}
			applied := mt.CoreCombinedOps + mt.CoreFastPathOps
			if applied == 0 {
				t.Errorf("no ops committed through the core pipeline: %+v", mt)
			}
			if mode == "combine" && mt.CoreRounds == 0 {
				t.Errorf("forced-combine run recorded no combining rounds")
			}
			busy := 0
			for i := range m.shards {
				sh := &m.shards[i]
				sh.mu.Lock()
				for _, md := range sh.devices {
					if md.busy {
						busy++
					}
				}
				sh.mu.Unlock()
			}
			if got := m.busyDevices.Load(); got != int64(busy) {
				t.Errorf("busy gauge %d != actual busy %d", got, busy)
			}
		})
	}
}

// TestDisableDailyBudget proves the benchmark knob: with the budget lifted a
// device that reported back is assignable again the same day; with it in
// force (the default) the second check-in is refused without error.
func TestDisableDailyBudget(t *testing.T) {
	for _, disabled := range []bool{true, false} {
		clk := newFakeClock()
		m := NewManager(Config{Clock: clk.now, DisableDailyBudget: disabled})
		if _, err := m.RegisterJob(JobSpec{Name: "j", Category: "General", DemandPerRound: 10, Rounds: 1}); err != nil {
			t.Fatal(err)
		}
		ci := CheckIn{DeviceID: "dev", CPU: 0.9, Mem: 0.9}
		asg, err := m.DeviceCheckIn(ci)
		if err != nil || !asg.Assigned {
			t.Fatalf("disabled=%v: first check-in not assigned: %+v, %v", disabled, asg, err)
		}
		if err := m.DeviceReport(Report{DeviceID: "dev", JobID: asg.JobID, OK: true, DurationSeconds: 1}); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Minute)
		again, err := m.DeviceCheckIn(ci)
		if err != nil {
			t.Fatal(err)
		}
		if again.Assigned != disabled {
			t.Errorf("disabled=%v: same-day reassignment = %v, want %v", disabled, again.Assigned, disabled)
		}
	}
}

// TestCoreCommitValidation pins the mode names: the CLIs gate on
// CoreCommitValid and NewManager panics on anything it rejects.
func TestCoreCommitValidation(t *testing.T) {
	for _, ok := range []string{"", "auto", "direct", "combine"} {
		if !CoreCommitValid(ok) {
			t.Errorf("CoreCommitValid(%q) = false", ok)
		}
	}
	if CoreCommitValid("bogus") {
		t.Error(`CoreCommitValid("bogus") = true`)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewManager accepted an unknown core commit mode")
		}
	}()
	NewManager(Config{CoreCommit: "bogus"})
}
