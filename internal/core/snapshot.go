package core

import (
	"venn/internal/device"
	"venn/internal/job"
	"venn/internal/simtime"
)

// PlanSnapshot is an immutable, epoch-versioned view of one finished cell
// plan: the per-cell group priority rows plus a copy of each planned group's
// job queue and the tier filters in force when the plan was published.
//
// Snapshots are published behind an atomic pointer at the end of every
// (re)plan, so concurrent readers — the live server's check-in fast path,
// metrics endpoints, monitoring — can consult the current plan without
// taking the scheduler lock. Nothing reachable from a snapshot is ever
// mutated after publication: the rows either belong to a freshly built plan
// or were copy-on-write patched, the job slices are copies, and tier filters
// are immutable once created. Job *state* is deliberately not captured;
// readers that need it (e.g. to commit an assignment) must revalidate under
// the scheduler lock. A snapshot paired with a true Venn.PlanFresh() answer
// is current: every lifecycle event marks the plan stale before the event's
// effects are observable.
type PlanSnapshot struct {
	epoch   uint64
	order   [][]int
	reqs    []device.Requirement
	groups  [][]*job.Job
	filters map[job.ID]*tierFilter
	open    int
}

// Epoch returns the snapshot's monotonically increasing version.
func (s *PlanSnapshot) Epoch() uint64 { return s.epoch }

// OpenRequests returns the total number of open requests in the plan.
func (s *PlanSnapshot) OpenRequests() int {
	if s == nil {
		return 0
	}
	return s.open
}

// NumCells returns the number of grid cells the plan covers.
func (s *PlanSnapshot) NumCells() int {
	if s == nil {
		return 0
	}
	return len(s.order)
}

// HasCandidate reports whether the plan has any open request a device in the
// given cell could serve: it walks the cell's group priority row applying
// the requirement and tier-filter checks exactly as Venn.Assign does, but
// against the snapshot's frozen queues instead of live job state. While the
// snapshot is fresh (Venn.PlanFresh), a false answer proves the device would
// leave Assign empty-handed, because every queued job of a fresh plan still
// has an open request — state transitions always mark the plan stale first.
func (s *PlanSnapshot) HasCandidate(d *device.Device, cell device.CellID, now simtime.Time) bool {
	if s == nil || s.open == 0 || int(cell) < 0 || int(cell) >= len(s.order) {
		return false
	}
	for _, gi := range s.order[cell] {
		jobs := s.groups[gi]
		if len(jobs) == 0 || !s.reqs[gi].Eligible(d) {
			continue
		}
		if len(s.filters) == 0 {
			return true
		}
		for _, j := range jobs {
			if f := s.filters[j.ID]; f != nil && now < f.lapseAt && !f.accepts(d) {
				continue
			}
			return true
		}
	}
	return false
}

// publishSnapshot freezes the current plan and queues into a new snapshot
// and stores it for lock-free readers. Called at the end of ensurePlan,
// after the plan and group queues are consistent.
func (v *Venn) publishSnapshot() {
	v.planEpoch++
	s := &PlanSnapshot{
		epoch:  v.planEpoch,
		order:  v.plan.Order,
		reqs:   make([]device.Requirement, len(v.planGroups)),
		groups: make([][]*job.Job, len(v.planGroups)),
	}
	for i, g := range v.planGroups {
		s.reqs[i] = g.req
		s.groups[i] = append([]*job.Job(nil), g.jobs...)
		s.open += len(g.jobs)
	}
	if len(v.filters) > 0 {
		s.filters = make(map[job.ID]*tierFilter, len(v.filters))
		for id, f := range v.filters {
			s.filters[id] = f
		}
	}
	v.snap.Store(s)
}

// PlanSnapshot returns the most recently published plan snapshot, or nil
// before the first plan is built. Safe for concurrent use.
func (v *Venn) PlanSnapshot() *PlanSnapshot { return v.snap.Load() }

// RefreshPlan replans and republishes if any lifecycle event invalidated the
// current plan; a no-op when the plan is fresh. The live server calls it at
// the top of a batch so the whole batch can probe one fresh snapshot instead
// of falling back to the locked path item by item. NOT safe for concurrent
// use — callers hold whatever lock guards the scheduler's mutating side.
func (v *Venn) RefreshPlan(now simtime.Time) {
	if v.env == nil {
		return
	}
	v.ensurePlan(now)
}

// PlanFresh reports whether the published snapshot still reflects every
// lifecycle event applied to the scheduler. Safe for concurrent use; pair it
// with PlanSnapshot (check freshness first, then load — ensurePlan publishes
// the new snapshot before clearing the stale flag, so a fresh answer
// guarantees the subsequent load sees at least that snapshot). PlanFresh may
// return true before the first plan exists; PlanSnapshot is nil then and
// readers must fall back to the locked path.
func (v *Venn) PlanFresh() bool { return !v.planStale.Load() }
