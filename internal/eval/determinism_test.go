package eval

import (
	"testing"

	"venn/internal/sim"
	"venn/internal/trace"
	"venn/internal/workload"
)

// fingerprint flattens a result into an exactly comparable record: every
// completed job's (ID, JCT) in completion order plus the engine counters.
type runFingerprint struct {
	jobs     []int64
	counters [5]int
}

func fingerprintOf(r *sim.Result) runFingerprint {
	fp := runFingerprint{counters: [5]int{r.Assignments, r.Responses, r.Failures, r.Aborts, r.CheckIns}}
	for _, j := range r.Completed {
		fp.jobs = append(fp.jobs, int64(j.ID), int64(j.JCT()))
	}
	return fp
}

func equalFingerprint(a, b runFingerprint) bool {
	if a.counters != b.counters || len(a.jobs) != len(b.jobs) {
		return false
	}
	for i := range a.jobs {
		if a.jobs[i] != b.jobs[i] {
			return false
		}
	}
	return true
}

// TestSchedulerDeterminism re-runs the same seeded comparison and demands
// bit-identical JCT vectors per scheduler. This guards the two places where
// incidental nondeterminism could creep in: map-iteration order feeding the
// Venn plan (ensurePlan sorts planGroups explicitly) and the parallel
// experiment runner (every run owns its fleet clone and RNG).
func TestSchedulerDeterminism(t *testing.T) {
	run := func() map[string]runFingerprint {
		setup := NewSetup(ScaleQuick, 11)
		cmp, err := Compare(setup, StandardSchedulers())
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]runFingerprint, len(cmp.Results))
		for name, r := range cmp.Results {
			out[name] = fingerprintOf(r)
		}
		return out
	}
	first := run()
	for trial := 0; trial < 2; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("trial %d: scheduler set changed: %d vs %d", trial, len(again), len(first))
		}
		for name, fp := range first {
			if !equalFingerprint(fp, again[name]) {
				t.Errorf("trial %d: %s produced different results for the same seed", trial, name)
			}
		}
	}
}

// TestRunOneIndependentOfSharedFleet checks that concurrent runs over clones
// of one fleet reproduce the sequential Reset-and-reuse results — the
// invariant the parallel Compare depends on.
func TestRunOneIndependentOfSharedFleet(t *testing.T) {
	setup := NewSetup(ScaleQuick, 23)
	factories := StandardSchedulers()

	sequential := make(map[string]runFingerprint)
	{
		fleet := trace.GenerateFleet(setup.Fleet)
		wl := workload.Generate(setup.Jobs)
		for _, name := range []string{"FIFO", "Random", "SRSF", "Venn"} {
			res, err := RunOne(fleet, wl, factories[name], setup.Seed+100, nil)
			if err != nil {
				t.Fatal(err)
			}
			sequential[name] = fingerprintOf(res)
		}
	}

	cmp, err := Compare(setup, factories)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range sequential {
		if !equalFingerprint(fingerprintOf(cmp.Results[name]), want) {
			t.Errorf("%s: parallel Compare diverged from sequential shared-fleet runs", name)
		}
	}
}
