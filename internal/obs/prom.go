package obs

import (
	"fmt"
	"math"
	"strings"
)

// Prometheus text-format (version 0.0.4) exposition helpers. The server
// assembles GET /metrics from these; ValidateExposition is the strict
// grammar check CI lints the endpoint with (via cmd/promlint) so the
// exposition stays scrapable by stock Prometheus.

// PromFamily opens a metric family: HELP then TYPE, in the order the format
// requires.
func PromFamily(b *strings.Builder, name, help, typ string) {
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(help)
	b.WriteString("\n# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}

// PromSample appends one sample line. labels is the pre-rendered inner
// label list (`op="checkin"`) or empty.
func PromSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatPromValue(v))
	b.WriteByte('\n')
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// PromHist appends one histogram's samples (cumulative _bucket series with
// the mandatory le="+Inf", then _sum and _count) under name, with labels as
// the shared inner label list. Durations are exposed in seconds, the
// Prometheus base unit.
func PromHist(b *strings.Builder, name, labels string, s HistSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Counts[i]
		le := "+Inf"
		if ub := UpperBound(i); !math.IsInf(ub, 1) {
			le = fmt.Sprintf("%g", ub/1e9)
		}
		PromSample(b, name+"_bucket", labels+sep+`le="`+le+`"`, float64(cum))
	}
	PromSample(b, name+"_sum", labels, float64(s.Sum)/1e9)
	PromSample(b, name+"_count", labels, float64(cum))
}

// ValidateExposition strictly checks a Prometheus text-format exposition:
// comment/TYPE/HELP syntax, metric and label name grammar, quoted and
// escaped label values, parseable sample values, TYPE declared at most once
// and before its samples, histogram series carrying le labels with
// cumulative non-decreasing buckets ending at a le="+Inf" count that
// matches _count. Returns the family and sample counts so callers can
// assert non-emptiness.
func ValidateExposition(text string) (families, samples int, err error) {
	typed := map[string]string{} // family -> declared type
	seen := map[string]bool{}    // family -> sample seen (TYPE must precede)
	type histState struct {
		lastLe    float64
		lastCum   float64
		infCum    float64
		hasInf    bool
		count     float64
		hasCount  bool
		labelsKey string
	}
	hists := map[string]*histState{} // family+labels(sans le) -> bucket state

	lines := strings.Split(text, "\n")
	for ln, line := range lines {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s (%q)", ln+1, fmt.Sprintf(format, args...), line)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return 0, 0, fail("malformed comment line")
			}
			switch fields[1] {
			case "HELP":
				if !validMetricName(fields[2]) {
					return 0, 0, fail("invalid metric name %q in HELP", fields[2])
				}
			case "TYPE":
				name := fields[2]
				if !validMetricName(name) {
					return 0, 0, fail("invalid metric name %q in TYPE", name)
				}
				if len(fields) != 4 {
					return 0, 0, fail("TYPE line missing type")
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, 0, fail("unknown metric type %q", typ)
				}
				if _, dup := typed[name]; dup {
					return 0, 0, fail("duplicate TYPE for %q", name)
				}
				if seen[name] {
					return 0, 0, fail("TYPE for %q after its samples", name)
				}
				typed[name] = typ
				families++
			default:
				// Plain comment: legal, ignored.
			}
			continue
		}

		name, labels, value, perr := parseSampleLine(line)
		if perr != nil {
			return 0, 0, fail("%v", perr)
		}
		samples++
		fam := histFamily(name, typed)
		seen[fam] = true
		if typed[fam] != "histogram" && typed[fam] != "summary" {
			if _, ok := labels["le"]; ok && typed[name] == "" {
				return 0, 0, fail("le label on non-histogram sample %q", name)
			}
			continue
		}
		if typed[fam] == "summary" {
			continue
		}
		// Histogram family bookkeeping, keyed by its non-le labels.
		key := fam + "|" + labelsKeySansLe(labels)
		st := hists[key]
		if st == nil {
			st = &histState{lastLe: math.Inf(-1)}
			hists[key] = st
		}
		switch {
		case name == fam+"_bucket":
			leStr, ok := labels["le"]
			if !ok {
				return 0, 0, fail("histogram bucket without le label")
			}
			le, lerr := parseLe(leStr)
			if lerr != nil {
				return 0, 0, fail("bad le value %q", leStr)
			}
			if le <= st.lastLe {
				return 0, 0, fail("histogram le values not increasing (%g after %g)", le, st.lastLe)
			}
			if value < st.lastCum {
				return 0, 0, fail("histogram buckets not cumulative (%g after %g)", value, st.lastCum)
			}
			st.lastLe, st.lastCum = le, value
			if math.IsInf(le, 1) {
				st.hasInf, st.infCum = true, value
			}
		case name == fam+"_count":
			st.count, st.hasCount = value, true
		case name == fam+"_sum":
		default:
			return 0, 0, fail("unexpected sample %q for histogram family %q", name, fam)
		}
	}
	for key, st := range hists {
		fam := key[:strings.Index(key, "|")]
		if !st.hasInf {
			return 0, 0, fmt.Errorf("histogram %s: no le=\"+Inf\" bucket", fam)
		}
		if st.hasCount && st.count != st.infCum {
			return 0, 0, fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", fam, st.count, st.infCum)
		}
	}
	return families, samples, nil
}

// histFamily maps a sample name to its declared family: histogram and
// summary samples use the family name plus a _bucket/_sum/_count suffix.
func histFamily(name string, typed map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if fam, ok := strings.CutSuffix(name, suffix); ok {
			if t := typed[fam]; t == "histogram" || t == "summary" {
				return fam
			}
		}
	}
	return name
}

func labelsKeySansLe(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	// Deterministic order for the map key.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.Contains(s, ":") {
		return false
	}
	return validMetricName(s)
}

// parseSampleLine parses `name{label="value",...} value [timestamp]`.
func parseSampleLine(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("sample line without value")
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = map[string]string{}
	rest = rest[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("label without value")
			}
			lname := rest[:eq]
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("label value not quoted")
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return "", nil, 0, fmt.Errorf("unterminated label value")
				}
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\\' {
					if len(rest) < 2 {
						return "", nil, 0, fmt.Errorf("dangling escape in label value")
					}
					switch rest[1] {
					case '\\', '"':
						val.WriteByte(rest[1])
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("invalid escape \\%c in label value", rest[1])
					}
					rest = rest[2:]
					continue
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			labels[lname] = val.String()
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want value [timestamp] after name, got %q", rest)
	}
	if fields[0] == "+Inf" || fields[0] == "-Inf" || fields[0] == "NaN" {
		value = math.Inf(1)
	} else if _, serr := fmt.Sscanf(fields[0], "%g", &value); serr != nil {
		return "", nil, 0, fmt.Errorf("unparseable sample value %q", fields[0])
	}
	if len(fields) == 2 {
		var ts int64
		if _, serr := fmt.Sscanf(fields[1], "%d", &ts); serr != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}
