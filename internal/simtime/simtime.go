// Package simtime defines the simulated clock used across the Venn
// simulator. Simulated time is an absolute count of milliseconds since the
// start of the simulation, which keeps every component deterministic and
// cheap to compare, add, and hash.
package simtime

import (
	"fmt"
	"time"
)

// Time is an absolute instant in simulated time, in milliseconds since the
// simulation epoch (t = 0).
type Time int64

// Duration is a span of simulated time in milliseconds.
type Duration int64

// Common durations, mirroring the time package but in simulator units.
const (
	Millisecond Duration = 1
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
	Day         Duration = 24 * Hour
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// DayIndex returns the zero-based day the instant falls in.
func (t Time) DayIndex() int {
	if t < 0 {
		return int((t - Time(Day) + 1) / Time(Day))
	}
	return int(t / Time(Day))
}

// TimeOfDay returns the offset of t within its day, in [0, Day).
func (t Time) TimeOfDay() Duration {
	d := Duration(t % Time(Day))
	if d < 0 {
		d += Day
	}
	return d
}

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Minutes returns the duration as floating-point minutes.
func (d Duration) Minutes() float64 { return float64(d) / float64(Minute) }

// Hours returns the duration as floating-point hours.
func (d Duration) Hours() float64 { return float64(d) / float64(Hour) }

// Std converts the simulated duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Millisecond }

// FromSeconds converts floating-point seconds to a Duration, rounding to the
// nearest millisecond.
func FromSeconds(s float64) Duration { return Duration(s*float64(Second) + 0.5) }

// FromStd converts a time.Duration into simulator units.
func FromStd(d time.Duration) Duration { return Duration(d / time.Millisecond) }

// String renders the instant as an h:mm:ss.mmm offset from the epoch.
func (t Time) String() string {
	d := Duration(t)
	return d.String()
}

// String renders the duration in a compact h:mm:ss.mmm form.
func (d Duration) String() string {
	neg := ""
	if d < 0 {
		neg = "-"
		d = -d
	}
	h := d / Hour
	m := (d % Hour) / Minute
	s := (d % Minute) / Second
	ms := d % Second
	if ms == 0 {
		return fmt.Sprintf("%s%d:%02d:%02d", neg, h, m, s)
	}
	return fmt.Sprintf("%s%d:%02d:%02d.%03d", neg, h, m, s, ms)
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinDur returns the smaller of a and b.
func MinDur(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// MaxDur returns the larger of a and b.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Clamp restricts d to the inclusive range [lo, hi].
func Clamp(d, lo, hi Duration) Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
