//go:build !linux

package transport

import "syscall"

// reusePortSupported: without a portable SO_REUSEPORT we keep a single
// accept loop; ListenSharded degrades gracefully.
const reusePortSupported = false

func reusePortControl(network, address string, c syscall.RawConn) error { return nil }
