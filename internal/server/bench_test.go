package server

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// newBenchManager returns a manager with one General job whose demand is
// large enough that it never fills during the benchmark, so every check-in
// walks the full admission + scheduling path.
func newBenchManager(b *testing.B, shards int) *Manager {
	b.Helper()
	m := NewManager(Config{Shards: shards})
	if _, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 1 << 30, Rounds: 1}); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkManagerCheckInSingleLock is the seed-equivalent serving path:
// one lock stripe, one check-in per call, concurrent callers.
func BenchmarkManagerCheckInSingleLock(b *testing.B) {
	benchmarkCheckInSingle(b, 1)
}

// BenchmarkManagerCheckInSharded is the same per-call path on the sharded
// manager.
func BenchmarkManagerCheckInSharded(b *testing.B) {
	benchmarkCheckInSingle(b, defaultShards)
}

func benchmarkCheckInSingle(b *testing.B, shards int) {
	m := newBenchManager(b, shards)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			_, err := m.DeviceCheckIn(CheckIn{
				DeviceID: fmt.Sprintf("bench-%d", n),
				CPU:      float64(n%10) / 10,
				Mem:      float64(n%7) / 7,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkManagerCheckInBatchSharded measures the batched entry point:
// each op is one 64-item batch under a single core-lock acquisition. The
// custom checkins/s metric is directly comparable with the single-call
// benchmarks' ops/s.
func BenchmarkManagerCheckInBatchSharded(b *testing.B) {
	const batch = 64
	m := newBenchManager(b, defaultShards)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cis := make([]CheckIn, batch)
		for pb.Next() {
			for i := range cis {
				n := seq.Add(1)
				cis[i] = CheckIn{
					DeviceID: fmt.Sprintf("bench-%d", n),
					CPU:      float64(n%10) / 10,
					Mem:      float64(n%7) / 7,
				}
			}
			for _, r := range m.CheckInBatch(cis) {
				if r.Error != "" {
					b.Fatal(r.Error)
				}
			}
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)*batch/sec, "checkins/s")
	}
}

// BenchmarkCheckInContended measures the demand-heavy regime: an
// inexhaustible General job plus a lifted daily budget means every check-in
// is assignment-eligible and commits through the scheduler core, and every
// assignment is reported back so the same devices stay assignable. The
// direct/auto pair isolates the flat-combining applier (combiner.go)
// against the historical per-caller lock on identical traffic.
func BenchmarkCheckInContended(b *testing.B) {
	for _, mode := range []string{"direct", "auto"} {
		b.Run(mode, func(b *testing.B) {
			const batch = 64
			m := NewManager(Config{CoreCommit: mode, DisableDailyBudget: true})
			if _, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 1 << 30, Rounds: 1}); err != nil {
				b.Fatal(err)
			}
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				cis := make([]CheckIn, batch)
				for i := range cis {
					cis[i] = CheckIn{
						DeviceID: fmt.Sprintf("w%d-d%d", w, i),
						CPU:      0.5 + float64(i%5)/10,
						Mem:      0.5 + float64(i%4)/10,
					}
				}
				reps := make([]Report, 0, batch)
				for pb.Next() {
					reps = reps[:0]
					for i, r := range m.CheckInBatch(cis) {
						if r.Error != "" {
							b.Fatal(r.Error)
						}
						if r.Assigned {
							reps = append(reps, Report{
								DeviceID: cis[i].DeviceID, JobID: r.JobID,
								OK: true, DurationSeconds: 1,
							})
						}
					}
					if len(reps) > 0 {
						for _, rr := range m.ReportBatch(reps) {
							if rr.Error != "" {
								b.Fatal(rr.Error)
							}
						}
					}
				}
			})
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)*batch/sec, "checkins/s")
			}
		})
	}
}
