// The transport-neutral service layer. Service holds every piece of
// request-handling logic the daemon exposes — check-in, report, their batch
// variants, job registration and lookup, stats, metrics — operating purely
// on the wire structs and returning typed errors. Transport adapters (the
// HTTP handler in http.go, the framed stream server in internal/transport)
// reduce to decode → Service call → encode: they own bytes and status
// codes, never scheduling or manager logic. The package compiles the
// service without net/http; the split is what lets one scheduler core be
// served over multiple transports and, later, daemon-to-daemon federation.
package server

import (
	"errors"
	"fmt"

	"venn/internal/obs"
)

// Transport labels, used for per-transport serving telemetry.
const (
	TransportHTTP   = "http"
	TransportStream = "stream"
)

// transportLabels is the fixed set of per-transport rate counters the
// metrics recorder pre-allocates.
var transportLabels = []string{TransportHTTP, TransportStream}

// Code classifies a service-layer failure so each transport adapter can map
// it to its native status space (HTTP statuses, stream error frames)
// without inspecting error strings.
//
// The numeric values are part of the wire protocol: they ride verbatim in
// stream OpError frames (v1 JSON `code` field and v2 binary error payloads)
// and in HTTP error bodies, and a v2 client classifies failures by them
// alone. They are frozen — never renumber or reuse a value; add new codes
// at the end. codes_test.go pins them.
type Code int

const (
	// CodeInvalid is a malformed or unacceptable request.
	CodeInvalid Code = 1
	// CodeNotFound is a lookup of a resource that does not exist.
	CodeNotFound Code = 2
	// CodeBusy is a check-in for a device that already holds a task.
	CodeBusy Code = 3
	// CodeTooLarge is a payload over the transport's configured bound.
	CodeTooLarge Code = 4
	// CodeUnavailable is a request that could not be served right now and
	// should be retried — e.g. a federation forward whose outcome is
	// unknown (timeout mid-flight), where neither answering nor silently
	// applying locally would be honest.
	CodeUnavailable Code = 5
)

// Error is the service layer's typed error: a Code for the adapter plus the
// underlying cause for the wire message and errors.Is chains.
type Error struct {
	Code Code
	Err  error
}

func (e *Error) Error() string { return e.Err.Error() }

// Unwrap exposes the cause so errors.Is(err, ErrDeviceBusy) etc. keep
// working through the service layer.
func (e *Error) Unwrap() error { return e.Err }

// ErrCode extracts the service code from an error chain; errors that did
// not come from the service layer classify as CodeInvalid.
func ErrCode(err error) Code {
	var se *Error
	if errors.As(err, &se) {
		return se.Code
	}
	return CodeInvalid
}

func svcErr(code Code, err error) error { return &Error{Code: code, Err: err} }

// Router intercepts the four serving-path entry points when a federation
// layer is attached to the Manager (SetRouter). The router owns the
// ownership decision: it applies locally-owned requests to the Manager
// directly and forwards the rest to the owning peer daemon, returning the
// merged result. Implemented by internal/cluster; the interface lives here
// so the server package never imports the federation (or client) packages.
//
// Errors returned by a Router may be pre-typed *Error values (remote
// rejections arrive with their wire code); anything untyped is classified
// exactly like a local Manager error.
// Every entry point carries the request's observability span (nil when
// unsampled): the router attributes forward round-trips to its hop stage
// and propagates its trace ID across the wire.
type Router interface {
	CheckIn(ci CheckIn, sp *obs.Span) (Assignment, error)
	// The batch entry points additionally report whether any item was
	// forwarded to a peer. The transport layer reflects that bit back to
	// the client on the response opcode (the `forwarded` flag), which is
	// what tells a ring-aware client its topology is stale and it should
	// re-fetch before the next batch.
	CheckInBatch(cis []CheckIn, sp *obs.Span) ([]CheckInResult, bool)
	Report(r Report, sp *obs.Span) error
	ReportBatch(rs []Report, sp *obs.Span) ([]ReportResult, bool)
	// ForwardedIn records receipt of one peer-forwarded request frame of
	// the given payload size, so the receiving node's metrics count
	// forwards_in and forward_bytes_in without the transport layer knowing
	// any federation internals.
	ForwardedIn(bytes int)
}

// RawItems carries the still-encoded form of a v2 batch alongside its
// decoded items: Data is the request payload and item i occupies
// Data[Bounds[i]:Bounds[i+1]] (Bounds has len(items)+1 entries). A router
// that also implements RawRouter splices those byte ranges directly into
// outgoing forward frames — the v2 fixed layout makes the boundaries known
// at decode time, so misrouted items are relayed without a decode→re-encode
// round trip. Data is only valid for the duration of the call: the
// transport recycles the buffer when the handler returns, so implementations
// must copy any ranges they keep.
type RawItems struct {
	Data   []byte
	Bounds []uint32
}

// RawRouter is the zero-copy fast path of Router, taken by the transport
// layer for v2 batch frames when the attached router supports it. Semantics
// match CheckInBatch/ReportBatch exactly; raw is advisory (an implementation
// may ignore it).
type RawRouter interface {
	CheckInBatchRaw(cis []CheckIn, raw RawItems, sp *obs.Span) ([]CheckInResult, bool)
	ReportBatchRaw(rs []Report, raw RawItems, sp *obs.Span) ([]ReportResult, bool)
}

// Service is the transport-neutral serving core. One Service is
// instantiated per transport (the label feeds the per-transport check-in
// rates of /v1/metrics); all instances share the same Manager, so state and
// cumulative counters are transport-agnostic.
type Service struct {
	m    *Manager
	rate *rateCounter // served check-ins attributed to this transport
}

// NewService creates the serving facade for one transport. The transport
// label should be one of TransportHTTP or TransportStream; unknown labels
// still work but share the HTTP rate bucket.
func NewService(m *Manager, transport string) *Service {
	return &Service{m: m, rate: m.metrics.transportRate(transport)}
}

// Manager exposes the underlying manager (tick loops, telemetry hooks).
func (s *Service) Manager() *Manager { return s.m }

// Obs exposes the manager's observability registry. Transport adapters
// sample request spans from it and feed the always-on per-op total
// histograms; the histograms are shared across transports — they measure
// service time, which is transport-independent.
func (s *Service) Obs() *obs.Registry { return s.m.obs }

// RegisterJob admits a new CL job.
func (s *Service) RegisterJob(spec JobSpec) (JobStatus, error) {
	st, err := s.m.RegisterJob(spec)
	if err != nil {
		return JobStatus{}, svcErr(CodeInvalid, err)
	}
	return st, nil
}

// Jobs lists all jobs, active first.
func (s *Service) Jobs() []JobStatus { return s.m.Jobs() }

// JobStatusByID looks up one job.
func (s *Service) JobStatusByID(id int) (JobStatus, error) {
	st, err := s.m.JobStatusByID(id)
	if err != nil {
		return JobStatus{}, svcErr(CodeNotFound, err)
	}
	return st, nil
}

// checkInErr types a check-in failure. Errors already carrying a service
// code (remote rejections relayed by a federation router) pass through.
func checkInErr(err error) error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	code := CodeInvalid
	if errors.Is(err, ErrDeviceBusy) {
		code = CodeBusy
	}
	return svcErr(code, err)
}

// reportErr types a report failure (see checkInErr).
func reportErr(err error) error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	code := CodeInvalid
	if errors.Is(err, ErrUnknownDevice) {
		code = CodeNotFound
	}
	return svcErr(code, err)
}

// CheckIn processes a single device availability announcement. With a
// federation router attached the request is served by the device's owning
// daemon (forwarded transparently when that is a peer); otherwise it is
// applied locally.
func (s *Service) CheckIn(ci CheckIn, sp *obs.Span) (Assignment, error) {
	if r := s.m.router(); r != nil {
		asg, err := r.CheckIn(ci, sp)
		if err != nil {
			return Assignment{}, checkInErr(err)
		}
		s.rate.Add(s.m.nowSec(), 1)
		return asg, nil
	}
	return s.CheckInLocal(ci, sp)
}

// CheckInLocal applies ci to this node's manager unconditionally, bypassing
// any federation router. Transport adapters call it for requests that
// arrived with the forwarded (hop) mark — the hop guard that keeps a stale
// peer ring from bouncing a request back and forth.
func (s *Service) CheckInLocal(ci CheckIn, sp *obs.Span) (Assignment, error) {
	asg, err := s.m.DeviceCheckInSpan(ci, sp)
	if err != nil {
		return Assignment{}, checkInErr(err)
	}
	s.rate.Add(s.m.nowSec(), 1)
	return asg, nil
}

// CheckInBatch processes a batch of check-ins; Results[i] answers
// CheckIns[i], with per-item rejections in each result's Error field. With a
// federation router attached the batch is split by device owner, forwarded
// per owner concurrently, and merged back in order.
func (s *Service) CheckInBatch(req CheckInBatchRequest) (CheckInBatchResponse, error) {
	resp, _, err := s.CheckInBatchRouted(req, RawItems{}, nil)
	return resp, err
}

// CheckInBatchRouted is CheckInBatch for transports that care whether the
// batch was (partly) forwarded to a peer: the bool is true when any item
// took a federation hop. raw optionally carries the batch's still-encoded
// v2 payload for the router's zero-copy relay (see RawItems); pass the zero
// value when unavailable.
func (s *Service) CheckInBatchRouted(req CheckInBatchRequest, raw RawItems, sp *obs.Span) (CheckInBatchResponse, bool, error) {
	if len(req.CheckIns) > MaxBatch {
		return CheckInBatchResponse{}, false, svcErr(CodeInvalid, fmt.Errorf("server: batch exceeds %d items", MaxBatch))
	}
	if r := s.m.router(); r != nil {
		var results []CheckInResult
		var forwarded bool
		if rr, ok := r.(RawRouter); ok && raw.Data != nil {
			results, forwarded = rr.CheckInBatchRaw(req.CheckIns, raw, sp)
		} else {
			results, forwarded = r.CheckInBatch(req.CheckIns, sp)
		}
		s.countServed(results)
		return CheckInBatchResponse{Results: results}, forwarded, nil
	}
	resp, err := s.CheckInBatchLocal(req, sp)
	return resp, false, err
}

// CheckInBatchLocal applies the batch to this node's manager, bypassing any
// federation router (see CheckInLocal).
func (s *Service) CheckInBatchLocal(req CheckInBatchRequest, sp *obs.Span) (CheckInBatchResponse, error) {
	if len(req.CheckIns) > MaxBatch {
		return CheckInBatchResponse{}, svcErr(CodeInvalid, fmt.Errorf("server: batch exceeds %d items", MaxBatch))
	}
	results := s.m.CheckInBatchSpan(req.CheckIns, sp)
	s.countServed(results)
	return CheckInBatchResponse{Results: results}, nil
}

// countServed attributes a batch's accepted items to this transport's
// served-check-in rate.
func (s *Service) countServed(results []CheckInResult) {
	served := 0
	for i := range results {
		if results[i].Error == "" {
			served++
		}
	}
	s.rate.Add(s.m.nowSec(), int64(served))
}

// Report records a single task result, routed to the device's owner when a
// federation router is attached.
func (s *Service) Report(r Report, sp *obs.Span) error {
	if rt := s.m.router(); rt != nil {
		if err := rt.Report(r, sp); err != nil {
			return reportErr(err)
		}
		return nil
	}
	return s.ReportLocal(r, sp)
}

// ReportLocal applies r to this node's manager unconditionally (see
// CheckInLocal).
func (s *Service) ReportLocal(r Report, sp *obs.Span) error {
	if err := s.m.DeviceReportSpan(r, sp); err != nil {
		return reportErr(err)
	}
	return nil
}

// ReportBatch records a batch of task results; Results[i] answers
// Reports[i]. Routed per device owner when a federation router is attached.
func (s *Service) ReportBatch(req ReportBatchRequest) (ReportBatchResponse, error) {
	resp, _, err := s.ReportBatchRouted(req, RawItems{}, nil)
	return resp, err
}

// ReportBatchRouted is ReportBatch with the forwarded bit and optional raw
// relay payload (see CheckInBatchRouted).
func (s *Service) ReportBatchRouted(req ReportBatchRequest, raw RawItems, sp *obs.Span) (ReportBatchResponse, bool, error) {
	if len(req.Reports) > MaxBatch {
		return ReportBatchResponse{}, false, svcErr(CodeInvalid, fmt.Errorf("server: batch exceeds %d items", MaxBatch))
	}
	if r := s.m.router(); r != nil {
		var results []ReportResult
		var forwarded bool
		if rr, ok := r.(RawRouter); ok && raw.Data != nil {
			results, forwarded = rr.ReportBatchRaw(req.Reports, raw, sp)
		} else {
			results, forwarded = r.ReportBatch(req.Reports, sp)
		}
		return ReportBatchResponse{Results: results}, forwarded, nil
	}
	resp, err := s.ReportBatchLocal(req, sp)
	return resp, false, err
}

// ReportBatchLocal applies the batch to this node's manager, bypassing any
// federation router (see CheckInLocal).
func (s *Service) ReportBatchLocal(req ReportBatchRequest, sp *obs.Span) (ReportBatchResponse, error) {
	if len(req.Reports) > MaxBatch {
		return ReportBatchResponse{}, svcErr(CodeInvalid, fmt.Errorf("server: batch exceeds %d items", MaxBatch))
	}
	return ReportBatchResponse{Results: s.m.ReportBatchSpan(req.Reports, sp)}, nil
}

// NoteForwardedIn records receipt of one peer-forwarded request frame of
// the given payload size with the attached federation router's counters; a
// no-op without one.
func (s *Service) NoteForwardedIn(bytes int) {
	if r := s.m.router(); r != nil {
		r.ForwardedIn(bytes)
	}
}

// Stats returns the monitoring snapshot.
func (s *Service) Stats() Stats { return s.m.StatsSnapshot() }

// Metrics returns the serving-telemetry snapshot.
func (s *Service) Metrics() Metrics { return s.m.MetricsSnapshot() }
