package server

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentCheckInReport hammers the sharded manager from hundreds of
// goroutines mixing single and batched check-ins, reports, deadline ticks,
// and read-side snapshots. Run under -race (CI does) it is the proof that
// the shard/core lock split has no data races; the invariant checks at the
// end catch lost updates.
func TestConcurrentCheckInReport(t *testing.T) {
	m := NewManager(Config{}) // real clock: concurrent fake clocks would race
	const (
		jobs           = 6
		workers        = 100
		devicesPerWork = 40
	)
	for i := 0; i < jobs; i++ {
		cat := "General"
		if i%3 == 0 {
			cat = "High-Perf"
		}
		if _, err := m.RegisterJob(JobSpec{
			Name: fmt.Sprintf("race-%d", i), Category: cat,
			DemandPerRound: 50, Rounds: 4,
		}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				// Batched path: one batch of this worker's devices,
				// then a batch of reports for the assigned ones.
				cis := make([]CheckIn, devicesPerWork)
				for i := range cis {
					cis[i] = CheckIn{
						DeviceID: fmt.Sprintf("w%d-d%d", w, i),
						CPU:      float64((w+i)%10) / 10,
						Mem:      float64((w+2*i)%10) / 10,
					}
				}
				res := m.CheckInBatch(cis)
				var reports []Report
				for i, r := range res {
					if r.Error != "" {
						t.Errorf("batch item error: %s", r.Error)
						return
					}
					if r.Assigned {
						reports = append(reports, Report{
							DeviceID: cis[i].DeviceID, JobID: r.JobID,
							OK: i%7 != 0, DurationSeconds: 5,
						})
					}
				}
				if len(reports) > 0 {
					for _, rr := range m.ReportBatch(reports) {
						if rr.Error != "" {
							t.Errorf("report item error: %s", rr.Error)
						}
					}
				}
				return
			}
			// Single-request path.
			for i := 0; i < devicesPerWork; i++ {
				id := fmt.Sprintf("w%d-d%d", w, i)
				asg, err := m.DeviceCheckIn(CheckIn{
					DeviceID: id,
					CPU:      float64((w+i)%10) / 10,
					Mem:      float64((w+3*i)%10) / 10,
				})
				if err != nil {
					t.Errorf("check-in %s: %v", id, err)
					return
				}
				if !asg.Assigned {
					continue
				}
				if err := m.DeviceReport(Report{
					DeviceID: id, JobID: asg.JobID, OK: i%5 != 0, DurationSeconds: 3,
				}); err != nil {
					t.Errorf("report %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	// Read-side churn while the writers run.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				m.Tick()
				_ = m.Jobs()
				_ = m.StatsSnapshot()
				_ = m.MetricsSnapshot()
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()

	st := m.StatsSnapshot()
	mt := m.MetricsSnapshot()
	if st.CheckIns == 0 || st.Assignments == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	if st.Reports+st.Failures > st.Assignments {
		t.Errorf("more results than assignments: %+v", st)
	}
	if mt.KnownDevices != int64(workers*devicesPerWork) {
		t.Errorf("known devices = %d, want %d", mt.KnownDevices, workers*devicesPerWork)
	}
	// Every reservation must have been either kept (assigned, then freed
	// by its report) or released; count the stragglers still busy and
	// compare against the gauge.
	busy := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, md := range sh.devices {
			if md.busy {
				busy++
			}
		}
		sh.mu.Unlock()
	}
	if int64(busy) != mt.BusyDevices {
		t.Errorf("busy gauge = %d, actual busy devices = %d", mt.BusyDevices, busy)
	}
}

// TestConcurrentSameDevice drives many goroutines through the SAME device
// IDs so reservations genuinely collide; exactly the busy/daily-budget
// errors may surface, never a double assignment.
func TestConcurrentSameDevice(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.RegisterJob(JobSpec{Category: "General", DemandPerRound: 400, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	const devices = 20
	const workers = 50
	var assigned [devices]int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for d := 0; d < devices; d++ {
				id := fmt.Sprintf("shared-%d", d)
				asg, err := m.DeviceCheckIn(CheckIn{DeviceID: id, CPU: 0.6, Mem: 0.6})
				if err != nil {
					continue // busy collision: expected
				}
				if asg.Assigned {
					mu.Lock()
					assigned[d]++
					mu.Unlock()
					// Do NOT report: the device must stay busy so later
					// check-ins collide or hit the daily budget.
				}
			}
		}(w)
	}
	wg.Wait()
	for d, n := range assigned {
		if n > 1 {
			t.Errorf("device %d assigned %d times in one day", d, n)
		}
	}
	st := m.StatsSnapshot()
	if st.Assignments > devices {
		t.Errorf("%d assignments for %d devices", st.Assignments, devices)
	}
}
