package transport

import (
	"bytes"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	payload := []byte("hello, device")
	for _, sampled := range []bool{true, false} {
		wire := PrependTrace(append([]byte(nil), payload...), 0xdeadbeefcafef00d, sampled)
		if len(wire) != len(payload)+TraceContextSize {
			t.Fatalf("prepended length %d, want %d", len(wire), len(payload)+TraceContextSize)
		}
		id, s, rest, err := PeelTrace(wire)
		if err != nil {
			t.Fatal(err)
		}
		if id != 0xdeadbeefcafef00d || s != sampled || !bytes.Equal(rest, payload) {
			t.Fatalf("peel: id=%x sampled=%v rest=%q", id, s, rest)
		}
	}
}

func TestAppendTraceMatchesPrepend(t *testing.T) {
	payload := []byte{1, 2, 3}
	a := AppendTrace(nil, 42, true)
	a = append(a, payload...)
	p := PrependTrace(append([]byte(nil), payload...), 42, true)
	if !bytes.Equal(a, p) {
		t.Fatalf("AppendTrace and PrependTrace disagree: %x vs %x", a, p)
	}
}

func TestPeelTraceShort(t *testing.T) {
	if _, _, _, err := PeelTrace(make([]byte, TraceContextSize-1)); err == nil {
		t.Fatal("short trace context accepted")
	}
}

func TestPrependTraceEmptyPayload(t *testing.T) {
	wire := PrependTrace(nil, 7, true)
	id, sampled, rest, err := PeelTrace(wire)
	if err != nil || id != 7 || !sampled || len(rest) != 0 {
		t.Fatalf("empty payload roundtrip: id=%d sampled=%v rest=%q err=%v", id, sampled, rest, err)
	}
}
