// Command venndaemon runs Venn as a live resource manager (the standalone
// service of the paper's Figure 6). CL jobs register resource requests,
// devices check in as they become available, and the daemon assigns each
// device to a job using the IRS scheduling and tier-based matching
// algorithms.
//
// Usage:
//
//	venndaemon -addr :8080 -stream-addr :8081 -tiers 3 -epsilon 0
//
// HTTP API:
//
//	POST /v1/jobs           {"name":"kbd","category":"General","demand_per_round":100,"rounds":50}
//	POST /v1/checkin        {"device_id":"phone-1","cpu":0.8,"mem":0.7}
//	POST /v1/checkin/batch  {"checkins":[...]}
//	POST /v1/report         {"device_id":"phone-1","job_id":0,"ok":true,"duration_seconds":42}
//	POST /v1/report/batch   {"reports":[...]}
//	GET  /v1/jobs, /v1/jobs/{id}, /v1/stats, /v1/metrics
//
// Policies: -policy selects the primary scheduler by registry name (venn,
// fifo, srsf, random; see the README's Policies section) and
// -shadow-policies attaches observers that score the same event stream
// without ever assigning — their divergence counters surface under
// policy_shadows in /v1/metrics. -seed fixes the scheduling RNG for
// reproducible replays.
//
// Stream API: -stream-addr opens a persistent binary framed listener
// (internal/transport) carrying the same operations over pipelined frames;
// high-volume agents should prefer it (see the README's Transports
// section). Both transports drive one scheduler core. The listener runs
// -stream-shards SO_REUSEPORT accept loops (default GOMAXPROCS) so the
// stream path scales across cores, and -max-wire-version pins the protocol
// version ceiling (1 emulates a pre-v2 daemon: JSON payloads only; see the
// README's Wire protocol section).
//
// Federation: -peers federates this daemon with others into one serving
// fleet (see the README's Federation section). Device ownership is sharded
// across the members by a consistent-hash ring and misrouted check-ins or
// reports are forwarded to their owner over the stream protocol, so agents
// may talk to any member:
//
//	venndaemon -addr :8080 -stream-addr 10.0.0.1:8081 \
//	    -peers 10.0.0.1:8081,10.0.0.2:8081,10.0.0.3:8081
//
// Every member must be configured with the same -peers set; a member
// identifies its own entry by -node-id (default: the -stream-addr value).
//
// Shutdown: SIGINT/SIGTERM first stops originating new forwards (requests
// apply locally instead), then drains both listeners — in-flight requests,
// including forwarded frames, complete (bounded grace) — and finally closes
// the peer stream clients before the process exits.
//
// Profiling: -pprof serves net/http/pprof on a side listener and
// -cpuprofile records a CPU profile until shutdown, so perf work can
// attribute serving-path time without ad-hoc patches; -mutexprofile and
// -blockprofile capture lock-contention and goroutine-blocking profiles at
// shutdown, the natural lenses on the core commit pipeline.
//
// Core commit: -core-commit selects how scheduler-core mutations commit
// (auto: flat combining with an uncontended fast path, the default; direct:
// the historical per-caller lock; combine: always through the op queue —
// see the README's Core commit pipeline section). -daily-budget=false lifts
// the one-task-per-day device budget for sustained-demand benchmarking.
//
// Observability: every request feeds always-on per-op latency histograms,
// and -obs-sample (1 in N, default 64) attaches per-stage spans that land
// in /v1/metrics request_stage_ns, GET /v1/debug/flight (the flight
// recorder), and the GET /metrics Prometheus exposition. GET /v1/healthz
// answers 200/503 for probes, and -log-metrics writes a one-line serving
// summary to stderr at the given interval (see the README's Observability
// section).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"venn/internal/cluster"
	"venn/internal/core"
	"venn/internal/policy"
	"venn/internal/server"
	"venn/internal/transport"
)

// mutexProfileFraction samples 1 in N mutex contention events for
// -mutexprofile; blockProfileRateNs records one sample per N ns of
// goroutine blocking for -blockprofile.
const (
	mutexProfileFraction = 100
	blockProfileRateNs   = 10_000
)

// metricsLine renders the -log-metrics one-line serving summary: current
// rates, the worst per-stage p99 across ops (sampled spans), federation
// counters when clustered, and a health flag when the daemon is wedged.
func metricsLine(m *server.Manager) string {
	mt := m.MetricsSnapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "checkins/s=%.0f reports/s=%.0f devices=%d busy=%d",
		mt.CheckInsPerSec, mt.ReportsPerSec, mt.KnownDevices, mt.BusyDevices)
	worst := map[string]float64{}
	for _, byStage := range mt.RequestStageNs {
		for st, s := range byStage {
			if s.P99 > worst[st] {
				worst[st] = s.P99
			}
		}
	}
	for _, st := range []string{"read", "decode", "queue_wait", "apply", "hop", "encode", "write"} {
		if v, ok := worst[st]; ok {
			fmt.Fprintf(&b, " p99_%s=%s", st, time.Duration(v).Round(time.Microsecond))
		}
	}
	if mt.ClusterNodeID != "" {
		fmt.Fprintf(&b, " fwd_out=%d fwd_in=%d fwd_err=%d peers_up=%d/%d",
			mt.ClusterForwardsOut, mt.ClusterForwardsIn, mt.ClusterForwardErrors,
			mt.ClusterPeersUp, mt.ClusterPeersUp+mt.ClusterPeersDown)
	}
	if h := m.Health(); !h.OK {
		fmt.Fprintf(&b, " UNHEALTHY(%s)", h.Detail)
	}
	return b.String()
}

// writeProfile dumps a named runtime profile ("mutex", "block") to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "venndaemon: "+name+" profile:", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "venndaemon: "+name+" profile:", err)
		return
	}
	fmt.Fprintln(os.Stderr, "venndaemon: "+name+" profile written to", path)
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		streamAddr   = flag.String("stream-addr", "", "binary stream listen address (empty disables)")
		polName      = flag.String("policy", policy.Default, "primary scheduling policy: "+strings.Join(policy.Names(), ", "))
		shadowPols   = flag.String("shadow-policies", "", "comma-separated policies that shadow the primary (assignments observed, never applied)")
		seed         = flag.Int64("seed", 0, "scheduling RNG seed (0 = clock-derived; fix it for reproducible replays)")
		tiers        = flag.Int("tiers", 3, "device-tier granularity V")
		epsilon      = flag.Float64("epsilon", 0, "fairness knob")
		shards       = flag.Int("shards", 0, "device-state lock shards (0 = default)")
		coreCommit   = flag.String("core-commit", "", "scheduler core commit mode: auto (flat combining), direct (per-caller lock), combine (always queue); empty = auto")
		dailyBudget  = flag.Bool("daily-budget", true, "enforce the one-task-per-device-day budget (false lifts it, for sustained-demand benchmarking)")
		deviceTTL    = flag.Duration("device-ttl", 24*time.Hour, "evict devices not seen for this long (0 disables)")
		maxBody      = flag.Int64("max-body-bytes", 0, "HTTP single-item request body bound in bytes (0 = default 1MiB)")
		window       = flag.Int("stream-window", 0, "max in-flight frames per stream connection (0 = default)")
		streamShards = flag.Int("stream-shards", 0, "SO_REUSEPORT accept shards for the stream listener (0 = GOMAXPROCS, 1 = single listener)")
		maxWireVer   = flag.Int("max-wire-version", 0, "cap the stream protocol version served and offered to peers (0 = newest, 1 = pre-v2 JSON only)")
		peers        = flag.String("peers", "", "comma-separated stream addresses of every cluster member (enables federation; requires -stream-addr)")
		nodeID       = flag.String("node-id", "", "this node's member ID in -peers (default: the -stream-addr value)")
		vnodes       = flag.Int("vnodes", 0, "virtual nodes per member on the ownership ring (0 = default 128)")
		obsSample    = flag.Int("obs-sample", 0, "request-span sampling: 1 in N requests gets a per-stage span (0 = default 64, negative disables spans)")
		logMetrics   = flag.Duration("log-metrics", 0, "log a one-line serving summary to stderr at this interval (0 disables)")
		pprofSrv     = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile here until shutdown")
		mutexProf    = flag.String("mutexprofile", "", "write a mutex contention profile here at shutdown")
		blockProf    = flag.String("blockprofile", "", "write a goroutine blocking profile here at shutdown")
	)
	flag.Parse()

	if *pprofSrv != "" {
		go func() {
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintln(os.Stderr, "venndaemon: pprof server:", err)
			}
		}()
	}
	// stopProfile flushes every requested profile; idempotent so it can run
	// both on the normal return path (defer) and right before the error-path
	// os.Exit, which would skip deferred calls.
	stopProfile := func() {}
	var flushes []func()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "venndaemon: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "venndaemon: cpuprofile:", err)
			os.Exit(1)
		}
		flushes = append(flushes, func() {
			pprof.StopCPUProfile()
			_ = f.Close()
			fmt.Fprintln(os.Stderr, "venndaemon: CPU profile written to", *cpuProf)
		})
	}
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(mutexProfileFraction)
		flushes = append(flushes, func() { writeProfile("mutex", *mutexProf) })
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(blockProfileRateNs)
		flushes = append(flushes, func() { writeProfile("block", *blockProf) })
	}
	if len(flushes) > 0 {
		stopProfile = sync.OnceFunc(func() {
			for _, flush := range flushes {
				flush()
			}
		})
		defer stopProfile()
	}

	// ctx ends on SIGINT/SIGTERM; both transports then drain in-flight
	// requests before main returns (and the deferred profile flushes).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	if !policy.Valid(*polName) {
		fmt.Fprintf(os.Stderr, "venndaemon: unknown -policy %q (have: %s)\n", *polName, strings.Join(policy.Names(), ", "))
		stopProfile()
		os.Exit(1)
	}
	if !server.CoreCommitValid(*coreCommit) {
		fmt.Fprintf(os.Stderr, "venndaemon: unknown -core-commit %q (want auto, direct, or combine)\n", *coreCommit)
		stopProfile()
		os.Exit(1)
	}
	var shadowList []string
	if *shadowPols != "" {
		for _, name := range strings.Split(*shadowPols, ",") {
			name = strings.TrimSpace(name)
			if !policy.Valid(name) {
				fmt.Fprintf(os.Stderr, "venndaemon: unknown shadow policy %q (have: %s)\n", name, strings.Join(policy.Names(), ", "))
				stopProfile()
				os.Exit(1)
			}
			shadowList = append(shadowList, name)
		}
	}

	opts := core.DefaultOptions()
	opts.Tiers = *tiers
	opts.Epsilon = *epsilon
	m := server.NewManager(server.Config{
		Options:            opts,
		Policy:             *polName,
		ShadowPolicies:     shadowList,
		Seed:               *seed,
		Shards:             *shards,
		DeviceTTL:          *deviceTTL,
		CoreCommit:         *coreCommit,
		DisableDailyBudget: !*dailyBudget,
		ObsSampleEvery:     *obsSample,
	})
	defer m.StopShadows()

	if *maxWireVer < 0 || *maxWireVer > int(transport.MaxVersion) {
		fmt.Fprintf(os.Stderr, "venndaemon: -max-wire-version %d out of range (1..%d)\n", *maxWireVer, transport.MaxVersion)
		stopProfile()
		os.Exit(1)
	}

	var streamFailed atomic.Bool
	var streamSrv *transport.Server
	acceptShards := *streamShards
	if acceptShards <= 0 {
		acceptShards = runtime.GOMAXPROCS(0)
	}
	if *streamAddr != "" {
		streamSrv = transport.NewServer(m, transport.Options{Window: *window, MaxVersion: byte(*maxWireVer)})
		go func() {
			if err := streamSrv.ListenAndServeSharded(*streamAddr, acceptShards); err != nil && !errors.Is(err, transport.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "venndaemon: stream listener:", err)
				streamFailed.Store(true)
				cancel() // take the HTTP side down too
			}
		}()
	}

	var clu *cluster.Cluster
	if *peers != "" {
		if *streamAddr == "" {
			fmt.Fprintln(os.Stderr, "venndaemon: -peers requires -stream-addr (peers forward over the stream protocol)")
			stopProfile()
			os.Exit(1)
		}
		self := *nodeID
		if self == "" {
			self = *streamAddr
		}
		var err error
		clu, err = cluster.New(m, cluster.Config{
			SelfID:         self,
			Peers:          strings.Split(*peers, ","),
			VNodes:         *vnodes,
			MaxWireVersion: *maxWireVer,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "venndaemon:", err)
			stopProfile()
			os.Exit(1)
		}
		// Shutdown ordering, step 1: the moment the signal lands, stop
		// originating new forwards so the listener drain below never races
		// fresh frames onto peer connections about to close.
		go func() {
			<-ctx.Done()
			clu.BeginDrain()
		}()
	}

	if *logMetrics > 0 {
		go func() {
			tick := time.NewTicker(*logMetrics)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					fmt.Fprintln(os.Stderr, "venndaemon: "+metricsLine(m))
				}
			}
		}()
	}

	fmt.Printf("venndaemon listening on %s (policy=%s tiers=%d epsilon=%.1f shards=%d device-ttl=%v", *addr,
		m.PolicyName(), *tiers, *epsilon, m.MetricsSnapshot().Shards, *deviceTTL)
	if len(shadowList) > 0 {
		fmt.Printf(" shadows=%s", strings.Join(m.ShadowPolicies(), ","))
	}
	if *coreCommit != "" {
		fmt.Printf(" core-commit=%s", *coreCommit)
	}
	if !*dailyBudget {
		fmt.Printf(" daily-budget=off")
	}
	if *streamAddr != "" {
		fmt.Printf(" stream=%s shards=%d", *streamAddr, acceptShards)
	}
	if *maxWireVer != 0 {
		fmt.Printf(" max-wire-version=%d", *maxWireVer)
	}
	if *obsSample != 0 {
		fmt.Printf(" obs-sample=%d", *obsSample)
	}
	if clu != nil {
		fmt.Printf(" federation=%s", clu)
	}
	fmt.Println(")")

	err := server.Serve(ctx, *addr, m, server.HandlerConfig{MaxBodyBytes: *maxBody})
	// Step 2: drain the stream listener — in-flight frames, forwarded ones
	// included, are answered before their connections close.
	if streamSrv != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		if serr := streamSrv.Shutdown(sctx); serr != nil {
			fmt.Fprintln(os.Stderr, "venndaemon: stream shutdown:", serr)
		}
		scancel()
	}
	// Step 3: with no new forwards and the listeners drained, wait out any
	// forwards still in flight and close the peer stream clients.
	if clu != nil {
		_ = clu.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "venndaemon:", err)
	}
	if err != nil || streamFailed.Load() {
		stopProfile()
		os.Exit(1)
	}
}
