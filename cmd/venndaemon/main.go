// Command venndaemon runs Venn as a live resource manager (the standalone
// service of the paper's Figure 6). CL jobs register resource requests,
// devices check in as they become available, and the daemon assigns each
// device to a job using the IRS scheduling and tier-based matching
// algorithms.
//
// Usage:
//
//	venndaemon -addr :8080 -stream-addr :8081 -tiers 3 -epsilon 0
//
// HTTP API:
//
//	POST /v1/jobs           {"name":"kbd","category":"General","demand_per_round":100,"rounds":50}
//	POST /v1/checkin        {"device_id":"phone-1","cpu":0.8,"mem":0.7}
//	POST /v1/checkin/batch  {"checkins":[...]}
//	POST /v1/report         {"device_id":"phone-1","job_id":0,"ok":true,"duration_seconds":42}
//	POST /v1/report/batch   {"reports":[...]}
//	GET  /v1/jobs, /v1/jobs/{id}, /v1/stats, /v1/metrics
//
// Stream API: -stream-addr opens a persistent binary framed listener
// (internal/transport) carrying the same operations over pipelined frames;
// high-volume agents should prefer it (see the README's Transports
// section). Both transports drive one scheduler core.
//
// Shutdown: SIGINT/SIGTERM drains both listeners — in-flight requests
// complete (bounded grace) before the process exits.
//
// Profiling: -pprof serves net/http/pprof on a side listener and
// -cpuprofile records a CPU profile until shutdown, so perf work can
// attribute serving-path time without ad-hoc patches.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"venn/internal/core"
	"venn/internal/server"
	"venn/internal/transport"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		streamAddr = flag.String("stream-addr", "", "binary stream listen address (empty disables)")
		tiers      = flag.Int("tiers", 3, "device-tier granularity V")
		epsilon    = flag.Float64("epsilon", 0, "fairness knob")
		shards     = flag.Int("shards", 0, "device-state lock shards (0 = default)")
		deviceTTL  = flag.Duration("device-ttl", 24*time.Hour, "evict devices not seen for this long (0 disables)")
		maxBody    = flag.Int64("max-body-bytes", 0, "HTTP single-item request body bound in bytes (0 = default 1MiB)")
		window     = flag.Int("stream-window", 0, "max in-flight frames per stream connection (0 = default)")
		pprofSrv   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile here until shutdown")
	)
	flag.Parse()

	if *pprofSrv != "" {
		go func() {
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintln(os.Stderr, "venndaemon: pprof server:", err)
			}
		}()
	}
	// stopProfile flushes the CPU profile; idempotent so it can run both on
	// the normal return path (defer) and right before the error-path
	// os.Exit, which would skip deferred calls.
	stopProfile := func() {}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "venndaemon: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "venndaemon: cpuprofile:", err)
			os.Exit(1)
		}
		stopProfile = sync.OnceFunc(func() {
			pprof.StopCPUProfile()
			_ = f.Close()
			fmt.Fprintln(os.Stderr, "venndaemon: CPU profile written to", *cpuProf)
		})
		defer stopProfile()
	}

	// ctx ends on SIGINT/SIGTERM; both transports then drain in-flight
	// requests before main returns (and the deferred profile flushes).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	opts := core.DefaultOptions()
	opts.Tiers = *tiers
	opts.Epsilon = *epsilon
	m := server.NewManager(server.Config{Options: opts, Shards: *shards, DeviceTTL: *deviceTTL})

	var streamFailed atomic.Bool
	var streamSrv *transport.Server
	if *streamAddr != "" {
		streamSrv = transport.NewServer(m, transport.Options{Window: *window})
		go func() {
			if err := streamSrv.ListenAndServe(*streamAddr); err != nil && !errors.Is(err, transport.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "venndaemon: stream listener:", err)
				streamFailed.Store(true)
				cancel() // take the HTTP side down too
			}
		}()
	}

	fmt.Printf("venndaemon listening on %s (tiers=%d epsilon=%.1f shards=%d device-ttl=%v", *addr,
		*tiers, *epsilon, m.MetricsSnapshot().Shards, *deviceTTL)
	if *streamAddr != "" {
		fmt.Printf(" stream=%s", *streamAddr)
	}
	fmt.Println(")")

	err := server.Serve(ctx, *addr, m, server.HandlerConfig{MaxBodyBytes: *maxBody})
	if streamSrv != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		if serr := streamSrv.Shutdown(sctx); serr != nil {
			fmt.Fprintln(os.Stderr, "venndaemon: stream shutdown:", serr)
		}
		scancel()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "venndaemon:", err)
	}
	if err != nil || streamFailed.Load() {
		stopProfile()
		os.Exit(1)
	}
}
